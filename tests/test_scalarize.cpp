#include "moo/scalarize.hpp"

#include <gtest/gtest.h>

#include "moo/objective.hpp"

namespace moela::moo {
namespace {

TEST(Tchebycheff, MaxWeightedDeviation) {
  const ObjectiveVector obj{3.0, 5.0};
  const ObjectiveVector w{0.5, 0.5};
  const ObjectiveVector z{1.0, 1.0};
  // max(0.5*2, 0.5*4) = 2.0
  EXPECT_DOUBLE_EQ(tchebycheff(obj, w, z), 2.0);
}

TEST(Tchebycheff, ZeroWeightGetsEpsilonFloor) {
  const ObjectiveVector obj{10.0, 1.0};
  const ObjectiveVector w{0.0, 1.0};
  const ObjectiveVector z{0.0, 0.0};
  // Objective 0 still contributes via the 1e-6 floor.
  EXPECT_GT(tchebycheff(obj, w, z), 0.999);
  const ObjectiveVector obj2{1e9, 0.0};
  EXPECT_GT(tchebycheff(obj2, w, z), 100.0);
}

TEST(Tchebycheff, AtReferencePointIsZero) {
  const ObjectiveVector z{2.0, 3.0, 4.0};
  const ObjectiveVector w{0.3, 0.3, 0.4};
  EXPECT_DOUBLE_EQ(tchebycheff(z, w, z), 0.0);
}

TEST(Tchebycheff, BetterDesignScoresLower) {
  const ObjectiveVector w{0.5, 0.5};
  const ObjectiveVector z{0.0, 0.0};
  EXPECT_LT(tchebycheff(ObjectiveVector{1.0, 1.0}, w, z),
            tchebycheff(ObjectiveVector{2.0, 2.0}, w, z));
}

TEST(WeightedDistance, SumOfWeightedDeviations) {
  const ObjectiveVector obj{3.0, 5.0};
  const ObjectiveVector w{0.25, 0.75};
  const ObjectiveVector z{1.0, 1.0};
  // 0.25*2 + 0.75*4 = 3.5 (Eq. 8)
  EXPECT_DOUBLE_EQ(weighted_distance(obj, w, z), 3.5);
}

TEST(WeightedDistance, UpperBoundsTchebycheff) {
  // sum of non-negative terms >= their max (with equal weights).
  const ObjectiveVector obj{4.0, 7.0, 2.0};
  const ObjectiveVector w{0.33, 0.33, 0.34};
  const ObjectiveVector z{1.0, 1.0, 1.0};
  EXPECT_GE(weighted_distance(obj, w, z), tchebycheff(obj, w, z));
}

TEST(ReferencePoint, StartsAtInfinityAndTracksMinima) {
  ReferencePoint z(2);
  EXPECT_TRUE(z.update(ObjectiveVector{5.0, 3.0}));
  EXPECT_EQ(z.value(), (ObjectiveVector{5.0, 3.0}));
  EXPECT_TRUE(z.update(ObjectiveVector{6.0, 1.0}));  // improves dim 1 only
  EXPECT_EQ(z.value(), (ObjectiveVector{5.0, 1.0}));
  EXPECT_FALSE(z.update(ObjectiveVector{7.0, 2.0}));  // no improvement
  EXPECT_EQ(z.value(), (ObjectiveVector{5.0, 1.0}));
}

TEST(ReferencePoint, ComponentWiseNotPointWise) {
  ReferencePoint z(3);
  z.update(ObjectiveVector{1.0, 9.0, 9.0});
  z.update(ObjectiveVector{9.0, 1.0, 9.0});
  z.update(ObjectiveVector{9.0, 9.0, 1.0});
  EXPECT_EQ(z.value(), (ObjectiveVector{1.0, 1.0, 1.0}));
}

}  // namespace
}  // namespace moela::moo
