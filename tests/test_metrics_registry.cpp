// Covers src/util/metrics.{hpp,cpp}: the telemetry registry (tentpole of
// the observability PR). NOT to be confused with tests/test_metrics.cpp,
// which tests moo-quality metrics (hypervolume etc.).
#include "util/metrics.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace moela::util {
namespace {

TEST(MetricsRegistry, GoldenPrometheusText) {
  MetricsRegistry registry;
  registry.counter("t_requests_total", "Requests seen", {{"verb", "ping"}})
      .add(2);
  registry.counter("t_requests_total", "Requests seen", {{"verb", "run"}})
      .add();
  registry.gauge("t_queue_depth", "Queue depth").set(-3);
  // Empty help suppresses the # HELP line; no observations keep the sum an
  // exact 0, so the whole exposition is byte-stable.
  registry.histogram("t_wait_seconds", "", {0.25, 1.0, 4.0});

  const std::string expected =
      "# HELP t_queue_depth Queue depth\n"
      "# TYPE t_queue_depth gauge\n"
      "t_queue_depth -3\n"
      "# HELP t_requests_total Requests seen\n"
      "# TYPE t_requests_total counter\n"
      "t_requests_total{verb=\"ping\"} 2\n"
      "t_requests_total{verb=\"run\"} 1\n"
      "# TYPE t_wait_seconds histogram\n"
      "t_wait_seconds_bucket{le=\"0.25\"} 0\n"
      "t_wait_seconds_bucket{le=\"1\"} 0\n"
      "t_wait_seconds_bucket{le=\"4\"} 0\n"
      "t_wait_seconds_bucket{le=\"+Inf\"} 0\n"
      "t_wait_seconds_sum 0\n"
      "t_wait_seconds_count 0\n";
  EXPECT_EQ(registry.prometheus_text(), expected);
}

TEST(MetricsRegistry, HistogramBucketEdgesAreLeInclusive) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);     // below every bound -> first bucket
  h.observe(1.0);     // ON a bound: le-semantics put it IN that bucket
  h.observe(1.0001);  // just past -> next bucket
  h.observe(10.0);
  h.observe(100.0);
  h.observe(100.5);  // above the last finite bound -> +Inf
  const std::vector<std::uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);  // 0.5, 1.0
  EXPECT_EQ(counts[1], 2u);  // 1.0001, 10.0
  EXPECT_EQ(counts[2], 1u);  // 100.0
  EXPECT_EQ(counts[3], 1u);  // 100.5
  EXPECT_EQ(h.count(), 6u);
}

TEST(MetricsRegistry, HistogramCumulativeBucketsInText) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("t_h", "", {1.0, 10.0});
  h.observe(0.5);
  h.observe(1.0);
  h.observe(5.0);
  h.observe(50.0);
  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("t_h_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("t_h_bucket{le=\"10\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("t_h_bucket{le=\"+Inf\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("t_h_count 4\n"), std::string::npos);
}

TEST(MetricsRegistry, HistogramSumIsExactNanocount) {
  Histogram h({1.0});
  h.observe(0.5);
  h.observe(0.25);
  EXPECT_EQ(h.sum_nano(), 750000000);
}

TEST(MetricsRegistry, HistogramRejectsNonIncreasingBounds) {
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(MetricsRegistry, ExponentialBoundsByRepeatedMultiply) {
  const std::vector<double> bounds = exponential_bounds(0.001, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  // Exactly the repeated-multiply sequence, so every build agrees
  // bit-for-bit (guards against a pow()-based rewrite).
  EXPECT_EQ(bounds[0], 0.001);
  EXPECT_EQ(bounds[1], 0.001 * 2.0);
  EXPECT_EQ(bounds[2], 0.001 * 2.0 * 2.0);
  EXPECT_EQ(bounds[3], 0.001 * 2.0 * 2.0 * 2.0);
  EXPECT_THROW(exponential_bounds(0.0, 2.0, 4), std::invalid_argument);
  EXPECT_THROW(exponential_bounds(0.1, 1.0, 4), std::invalid_argument);
}

TEST(MetricsRegistry, SameNameAndLabelsResolveToOneSeries) {
  MetricsRegistry registry;
  Counter& a = registry.counter("t_c", "h", {{"x", "1"}, {"y", "2"}});
  // Label order must not matter: sets are canonicalized by sorting.
  Counter& b = registry.counter("t_c", "h", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(&a, &b);
  Counter& other = registry.counter("t_c", "h", {{"x", "9"}});
  EXPECT_NE(&a, &other);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry registry;
  registry.counter("t_dual", "h");
  EXPECT_THROW(registry.gauge("t_dual", "h"), std::logic_error);
}

TEST(MetricsRegistry, LabelValuesAreEscaped) {
  MetricsRegistry registry;
  registry.counter("t_esc", "", {{"path", "a\\b\"c\nd"}}).add();
  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("t_esc{path=\"a\\\\b\\\"c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(MetricsRegistry, SnapshotJsonShape) {
  MetricsRegistry registry;
  registry.counter("t_c", "counts things", {{"k", "v"}}).add(7);
  registry.histogram("t_h", "", {1.0}).observe(0.5);
  const Json snapshot = registry.snapshot_json();
  const Json* counter = snapshot.find("t_c");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->find("type")->as_string(), "counter");
  EXPECT_EQ(counter->find("help")->as_string(), "counts things");
  const Json& series = counter->find("series")->as_array().front();
  EXPECT_EQ(series.find("labels")->find("k")->as_string(), "v");
  EXPECT_EQ(series.find("value")->as_u64(), 7u);
  const Json& hist = snapshot.find("t_h")->find("series")->as_array().front();
  EXPECT_EQ(hist.find("count")->as_u64(), 1u);
  EXPECT_EQ(hist.find("buckets")->as_array().size(), 2u);
}

// Threads hammer one counter and one histogram; totals must be EXACT (the
// whole point of atomic counts and the integer nanocount sum). The TSan
// ctest leg additionally proves the increment path is race-free.
TEST(MetricsRegistry, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("t_conc", "");
  Histogram& hist = registry.histogram("t_conc_h", "", {1.0, 10.0});
  constexpr int kThreads = 8;
  constexpr int kIterations = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &hist] {
      for (int i = 0; i < kIterations; ++i) {
        counter.add();
        hist.observe(0.5);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) *
                                 kIterations);
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kThreads) * kIterations);
  // 0.5 s = 500,000,000 nanounits; integer adds commute exactly, so the
  // sum is deterministic whatever the interleaving.
  EXPECT_EQ(hist.sum_nano(),
            static_cast<std::int64_t>(kThreads) * kIterations * 500000000);
  EXPECT_EQ(hist.bucket_counts()[0],
            static_cast<std::uint64_t>(kThreads) * kIterations);
}

TEST(MetricsRegistry, MintTraceIdShapeAndUniqueness) {
  std::set<std::string> seen;
  for (int i = 0; i < 200; ++i) {
    const std::string id = mint_trace_id();
    ASSERT_EQ(id.size(), 16u);
    for (char c : id) {
      EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c)) &&
                  !std::isupper(static_cast<unsigned char>(c)))
          << "trace id must be lowercase hex, got: " << id;
    }
    seen.insert(id);
  }
  // The per-process counter term guarantees distinct ids within a process.
  EXPECT_EQ(seen.size(), 200u);
}

}  // namespace
}  // namespace moela::util
