#include "moo/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace moela::moo {

double igd(const std::vector<ObjectiveVector>& approx,
           const std::vector<ObjectiveVector>& reference_front) {
  if (reference_front.empty()) return 0.0;
  if (approx.empty()) return std::numeric_limits<double>::infinity();
  double total = 0.0;
  for (const auto& r : reference_front) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& a : approx) {
      double s = 0.0;
      for (std::size_t i = 0; i < r.size(); ++i) {
        const double d = a[i] - r[i];
        s += d * d;
      }
      best = std::min(best, s);
    }
    total += std::sqrt(best);
  }
  return total / static_cast<double>(reference_front.size());
}

std::optional<std::size_t> convergence_index(const ConvergenceTrace& trace,
                                             double rel_tol,
                                             std::size_t window) {
  if (trace.empty()) return std::nullopt;
  for (std::size_t i = 0; i + window < trace.size(); ++i) {
    const double base = trace[i].phv;
    if (base <= 0.0) continue;
    bool settled = true;
    for (std::size_t j = i + 1; j <= i + window; ++j) {
      if ((trace[j].phv - base) / base >= rel_tol) {
        settled = false;
        break;
      }
    }
    if (settled) return i;
  }
  // Never settled within the run: treat the final point as convergence.
  return trace.size() - 1;
}

std::optional<double> evaluations_to_reach(const ConvergenceTrace& trace,
                                           double phv_target) {
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace[i].phv >= phv_target) {
      if (i == 0) return static_cast<double>(trace[0].evaluations);
      // Interpolate between samples i-1 and i for a smoother estimate.
      const double p0 = trace[i - 1].phv;
      const double p1 = trace[i].phv;
      const double e0 = static_cast<double>(trace[i - 1].evaluations);
      const double e1 = static_cast<double>(trace[i].evaluations);
      if (p1 <= p0) return e1;
      const double t = (phv_target - p0) / (p1 - p0);
      return e0 + t * (e1 - e0);
    }
  }
  return std::nullopt;
}

std::optional<double> seconds_to_reach(const ConvergenceTrace& trace,
                                       double phv_target) {
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace[i].phv >= phv_target) {
      if (i == 0) return trace[0].seconds;
      const double p0 = trace[i - 1].phv;
      const double p1 = trace[i].phv;
      if (p1 <= p0) return trace[i].seconds;
      const double t = (phv_target - p0) / (p1 - p0);
      return trace[i - 1].seconds +
             t * (trace[i].seconds - trace[i - 1].seconds);
    }
  }
  return std::nullopt;
}

double phv_at_time(const ConvergenceTrace& trace, double t) {
  double phv = 0.0;
  for (const auto& point : trace) {
    if (point.seconds > t) break;
    phv = point.phv;
  }
  return phv;
}

std::optional<double> speedup_factor_time(const ConvergenceTrace& ours,
                                          const ConvergenceTrace& other,
                                          double rel_tol,
                                          std::size_t window) {
  const auto conv = convergence_index(other, rel_tol, window);
  if (!conv || ours.empty()) return std::nullopt;
  const TracePoint& converged = other[*conv];
  const auto our_seconds = seconds_to_reach(ours, converged.phv);
  if (!our_seconds || *our_seconds <= 0.0) return std::nullopt;
  return converged.seconds / *our_seconds;
}

std::optional<double> speedup_factor(const ConvergenceTrace& ours,
                                     const ConvergenceTrace& other,
                                     double rel_tol, std::size_t window) {
  const auto conv = convergence_index(other, rel_tol, window);
  if (!conv || ours.empty()) return std::nullopt;
  const TracePoint& converged = other[*conv];
  const auto our_evals = evaluations_to_reach(ours, converged.phv);
  if (!our_evals || *our_evals <= 0.0) return std::nullopt;
  return static_cast<double>(converged.evaluations) / *our_evals;
}

}  // namespace moela::moo
