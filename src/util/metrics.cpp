#include "util/metrics.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "util/numeric.hpp"
#include "util/rng.hpp"

namespace moela::util {

namespace {

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Canonical `key="value",...` rendering of a sorted label set; doubles as
/// the series map key and the exposition body.
std::string render_labels(const MetricLabels& labels) {
  std::string out;
  for (const auto& [key, value] : labels) {
    if (!out.empty()) out += ',';
    out += key;
    out += "=\"";
    out += escape_label_value(value);
    out += '"';
  }
  return out;
}

/// `name{k="v"}` — or bare `name` with no labels. `extra` appends one more
/// label (the histogram `le`).
std::string series_name(const std::string& name, const std::string& labels,
                        const std::string& extra = {}) {
  std::string body = labels;
  if (!extra.empty()) {
    if (!body.empty()) body += ',';
    body += extra;
  }
  if (body.empty()) return name;
  return name + '{' + body + '}';
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::invalid_argument(
          "Histogram bounds must be strictly increasing");
    }
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(double value) {
  // le-semantics: first bucket whose upper bound is >= value; past the
  // last finite bound, the +Inf bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  sum_nano_.fetch_add(static_cast<std::int64_t>(std::llround(value * 1e9)),
                      std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<double> exponential_bounds(double lo, double factor,
                                       std::size_t count) {
  if (!(lo > 0.0) || !(factor > 1.0)) {
    throw std::invalid_argument(
        "exponential_bounds needs lo > 0 and factor > 1");
  }
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = lo;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;  // repeated multiply, never pow(): bit-stable bounds
  }
  return bounds;
}

std::string mint_trace_id() {
  static std::atomic<std::uint64_t> sequence{0};
  const auto mono = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  const auto wall = static_cast<std::uint64_t>(
      std::chrono::system_clock::now().time_since_epoch().count());
  const auto stamp =
      (static_cast<std::uint64_t>(::getpid()) << 32) |
      (sequence.fetch_add(1, std::memory_order_relaxed) & 0xffffffffULL);
  // Three independently mixed sources XOR together; the per-process
  // counter term alone makes ids distinct within a process.
  std::uint64_t id = SplitMix64(mono).next();
  id ^= SplitMix64(wall).next();
  id ^= SplitMix64(stamp).next();
  static constexpr char kDigits[] = "0123456789abcdef";
  char text[16];
  for (int i = 15; i >= 0; --i) {
    text[i] = kDigits[id & 0xf];
    id >>= 4;
  }
  return std::string(text, sizeof(text));
}

MetricsRegistry::Series& MetricsRegistry::resolve(
    const std::string& name, const std::string& help, Kind kind,
    MetricLabels labels, const std::vector<double>* bounds) {
  std::sort(labels.begin(), labels.end());
  const std::string key = render_labels(labels);
  MutexLock lock(mutex_);
  auto [family_it, family_created] = families_.try_emplace(name);
  Family& family = family_it->second;
  if (family_created) {
    family.kind = kind;
    family.help = help;
    if (bounds != nullptr) family.bounds = *bounds;
  } else if (family.kind != kind) {
    throw std::logic_error("metric family '" + name +
                           "' registered with two different types");
  }
  auto [series_it, series_created] = family.series.try_emplace(key);
  Series& series = series_it->second;
  if (series_created) {
    series.labels = std::move(labels);
    switch (kind) {
      case Kind::kCounter:
        series.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        series.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        series.histogram = std::make_unique<Histogram>(family.bounds);
        break;
    }
  }
  return series;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  MetricLabels labels) {
  return *resolve(name, help, Kind::kCounter, std::move(labels), nullptr)
              .counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              MetricLabels labels) {
  return *resolve(name, help, Kind::kGauge, std::move(labels), nullptr).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      std::vector<double> bounds,
                                      MetricLabels labels) {
  return *resolve(name, help, Kind::kHistogram, std::move(labels), &bounds)
              .histogram;
}

Json MetricsRegistry::snapshot_json() const {
  MutexLock lock(mutex_);
  Json out = Json::object();
  for (const auto& [name, family] : families_) {
    Json entry = Json::object();
    switch (family.kind) {
      case Kind::kCounter: entry.set("type", "counter"); break;
      case Kind::kGauge: entry.set("type", "gauge"); break;
      case Kind::kHistogram: entry.set("type", "histogram"); break;
    }
    entry.set("help", family.help);
    Json series_array = Json::array();
    for (const auto& [key, series] : family.series) {
      Json row = Json::object();
      Json labels = Json::object();
      for (const auto& [label_key, label_value] : series.labels) {
        labels.set(label_key, label_value);
      }
      row.set("labels", std::move(labels));
      switch (family.kind) {
        case Kind::kCounter:
          row.set("value", Json(series.counter->value()));
          break;
        case Kind::kGauge: {
          // Json has no signed-integer storage; gauges snapshot as a
          // double (levels here are small: depths, connection counts).
          row.set("value",
                  Json(static_cast<double>(series.gauge->value())));
          break;
        }
        case Kind::kHistogram: {
          const Histogram& h = *series.histogram;
          Json bounds = Json::array();
          for (double b : h.bounds()) bounds.append(Json(b));
          Json buckets = Json::array();
          for (std::uint64_t c : h.bucket_counts()) buckets.append(Json(c));
          row.set("bounds", std::move(bounds));
          row.set("buckets", std::move(buckets));
          row.set("count", Json(h.count()));
          row.set("sum", Json(h.sum()));
          break;
        }
      }
      series_array.append(std::move(row));
    }
    entry.set("series", std::move(series_array));
    out.set(name, std::move(entry));
  }
  return out;
}

std::string MetricsRegistry::prometheus_text() const {
  MutexLock lock(mutex_);
  std::string out;
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) {
      out += "# HELP " + name + ' ' + family.help + '\n';
    }
    out += "# TYPE " + name + ' ';
    switch (family.kind) {
      case Kind::kCounter: out += "counter\n"; break;
      case Kind::kGauge: out += "gauge\n"; break;
      case Kind::kHistogram: out += "histogram\n"; break;
    }
    for (const auto& [key, series] : family.series) {
      switch (family.kind) {
        case Kind::kCounter:
          out += series_name(name, key) + ' ' +
                 dec(series.counter->value()) + '\n';
          break;
        case Kind::kGauge:
          out += series_name(name, key) + ' ' +
                 dec(series.gauge->value()) + '\n';
          break;
        case Kind::kHistogram: {
          const Histogram& h = *series.histogram;
          const auto counts = h.bucket_counts();
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < h.bounds().size(); ++i) {
            cumulative += counts[i];
            out += series_name(name + "_bucket", key,
                               "le=\"" + shortest_double(h.bounds()[i]) +
                                   "\"") +
                   ' ' + dec(cumulative) + '\n';
          }
          cumulative += counts[h.bounds().size()];
          out += series_name(name + "_bucket", key, "le=\"+Inf\"") + ' ' +
                 dec(cumulative) + '\n';
          out += series_name(name + "_sum", key) + ' ' +
                 shortest_double(h.sum()) + '\n';
          out += series_name(name + "_count", key) + ' ' + dec(h.count()) +
                 '\n';
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace moela::util
