// Fixture: seeded violation — setprecision marks decimal double formatting.
#include <iomanip>
#include <sstream>
void render(std::ostream& os, double v) { os << std::setprecision(17) << v; }
